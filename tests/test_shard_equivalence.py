"""Shard-equivalence suite: sharded runs are bit-identical to one pass.

The tentpole guarantee of the sharded executor: partitioning the edge
stream into contiguous shards, running an identically-seeded copy per
shard, shipping state through the wire format, and merging in shard
order reproduces the single-pass answer *exactly* -- for every shard
count, for pathologically uneven splits, and under every adversarial
arrival order, on both the scalar and the batched reference paths.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro import (
    EdgeStream,
    EstimateMaxCover,
    MaxCoverReporter,
    ShardedStreamRunner,
    StreamRunner,
)
from repro.streams.adversary import (
    duplicate_flood,
    fragmented,
    noise_first,
    signal_first,
)

M, N, K, ALPHA = 150, 300, 6, 3.0
SHARD_COUNTS = (1, 2, 3, 7)

ESTIMATOR = partial(EstimateMaxCover, m=M, n=N, k=K, alpha=ALPHA, seed=7)
REPORTER = partial(MaxCoverReporter, m=M, n=N, k=K, alpha=ALPHA, seed=13)

ADVERSARIES = {
    "noise_first": noise_first,
    "signal_first": signal_first,
    "duplicate_flood": duplicate_flood,
    "fragmented": lambda workload, seed=0: fragmented(workload),
}


@pytest.fixture(scope="module")
def adversarial_streams(planted_workload) -> dict[str, EdgeStream]:
    streams = {
        name: make(planted_workload, seed=3)
        for name, make in ADVERSARIES.items()
    }
    streams["random"] = EdgeStream.from_system(
        planted_workload.system, order="random", seed=7
    )
    return streams


@pytest.fixture(scope="module")
def scalar_estimates(adversarial_streams) -> dict[str, float]:
    """Single-pass scalar-path reference estimate per arrival order."""
    reference = {}
    for name, stream in adversarial_streams.items():
        algo = ESTIMATOR()
        StreamRunner(path="scalar").run(algo, stream)
        reference[name] = algo.estimate()
    return reference


class TestEstimatorEquivalence:
    @pytest.mark.parametrize("order", sorted(ADVERSARIES) + ["random"])
    @pytest.mark.parametrize("workers", SHARD_COUNTS)
    def test_sharded_matches_scalar_single_pass(
        self, adversarial_streams, scalar_estimates, order, workers
    ):
        stream = adversarial_streams[order]
        runner = ShardedStreamRunner(
            workers=workers, chunk_size=256, backend="serial"
        )
        merged, report = runner.run(ESTIMATOR, stream)
        assert merged.estimate() == scalar_estimates[order]
        assert merged.tokens_seen == len(stream)
        assert report.tokens == len(stream)
        assert report.workers == workers

    def test_sharded_matches_batched_single_pass(self, adversarial_streams):
        """The vectorized single-pass path agrees too (chunking is not
        the mechanism sharding relies on)."""
        stream = adversarial_streams["random"]
        batched = ESTIMATOR()
        StreamRunner(chunk_size=512).run(batched, stream)
        merged, _report = ShardedStreamRunner(
            workers=3, chunk_size=512, backend="serial"
        ).run(ESTIMATOR, stream)
        assert merged.estimate() == batched.estimate()

    @pytest.mark.parametrize(
        "boundaries",
        [[1], [5], [17]],
        ids=["one-edge-head", "tiny-head", "prime-cut"],
    )
    def test_uneven_splits(
        self, adversarial_streams, scalar_estimates, boundaries
    ):
        """Shard sizes carry no information: cutting one edge off the
        head must not change the merged answer."""
        stream = adversarial_streams["random"]
        merged, _report = ShardedStreamRunner(
            workers=2, chunk_size=256, backend="serial"
        ).run(ESTIMATOR, stream, boundaries=boundaries)
        assert merged.estimate() == scalar_estimates["random"]

    def test_empty_tail_shard(self, adversarial_streams, scalar_estimates):
        """A shard may legally receive zero edges (workers > tokens in
        the extreme); empty shards merge as identities."""
        stream = adversarial_streams["random"]
        total = len(stream)
        merged, report = ShardedStreamRunner(
            workers=3, chunk_size=256, backend="serial"
        ).run(ESTIMATOR, stream, boundaries=[total, total])
        assert merged.estimate() == scalar_estimates["random"]
        assert report.shards[1].tokens == 0
        assert report.shards[2].tokens == 0

    def test_process_backend_matches(
        self, adversarial_streams, scalar_estimates
    ):
        """The multiprocessing pool path returns the same bits as the
        serial harness (one shard count, to keep CI fast)."""
        stream = adversarial_streams["random"]
        merged, report = ShardedStreamRunner(
            workers=2, chunk_size=256, backend="process"
        ).run(ESTIMATOR, stream)
        assert merged.estimate() == scalar_estimates["random"]
        assert len(report.shards) == 2


class TestReporterEquivalence:
    @pytest.mark.parametrize("order", ["random", "noise_first", "fragmented"])
    def test_sharded_solution_identical(self, adversarial_streams, order):
        stream = adversarial_streams[order]
        single = REPORTER()
        StreamRunner(path="scalar").run(single, stream)
        reference = single.solution()

        for workers in (2, 3):
            merged, _report = ShardedStreamRunner(
                workers=workers, chunk_size=256, backend="serial"
            ).run(REPORTER, stream)
            assert merged.solution() == reference


class TestReportShape:
    def test_per_shard_timings_cover_the_stream(self, adversarial_streams):
        stream = adversarial_streams["random"]
        _merged, report = ShardedStreamRunner(
            workers=3, chunk_size=256, backend="serial"
        ).run(ESTIMATOR, stream)
        assert [t.shard for t in report.shards] == [0, 1, 2]
        assert sum(t.tokens for t in report.shards) == len(stream)
        assert report.path == "sharded"
        assert report.tokens_per_sec > 0
        assert report.merge_seconds >= 0.0

    def test_bad_boundaries_rejected(self, adversarial_streams):
        stream = adversarial_streams["random"]
        runner = ShardedStreamRunner(workers=2, backend="serial")
        with pytest.raises(ValueError, match="boundaries"):
            runner.run(ESTIMATOR, stream, boundaries=[3, 5])

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ShardedStreamRunner(workers=0)
        with pytest.raises(ValueError):
            ShardedStreamRunner(chunk_size=0)
        with pytest.raises(ValueError):
            ShardedStreamRunner(backend="threads")


class TestPlannedShardEquivalence:
    """The fused plan survives the shard/serialise/merge pipeline.

    Each worker builds its own plan (plans are per-process caches, never
    serialised); merged planned state must equal the unplanned
    single-pass state bit-for-bit.
    """

    def test_planned_sharded_matches_unplanned_single_pass(
        self, adversarial_streams
    ):
        import numpy as np

        from repro.engine.plan import planning_disabled

        stream = adversarial_streams["random"]
        reference = ESTIMATOR()
        with planning_disabled():
            StreamRunner(chunk_size=256).run(reference, stream)
        merged, _report = ShardedStreamRunner(
            workers=3, chunk_size=256, backend="serial"
        ).run(ESTIMATOR, stream)
        ref_state = reference.state_arrays()
        merged_state = merged.state_arrays()
        assert ref_state.keys() == merged_state.keys()
        for key in ref_state:
            if key.endswith("l0_sids"):
                # Per-superset sketch dicts are keyed in first-seen
                # order, which depends on batching granularity (a
                # pre-existing artifact, orthogonal to the plan); the
                # per-sid sketch contents are compared exactly.
                assert sorted(ref_state[key].tolist()) == sorted(
                    merged_state[key].tolist()
                ), key
            else:
                assert np.array_equal(
                    ref_state[key], merged_state[key]
                ), key
        assert merged.estimate() == reference.estimate()

    def test_planned_reporter_solution_through_shards(
        self, adversarial_streams
    ):
        from repro.engine.plan import planning_disabled

        stream = adversarial_streams["fragmented"]
        reference = REPORTER()
        with planning_disabled():
            StreamRunner(chunk_size=256).run(reference, stream)
        merged, _report = ShardedStreamRunner(
            workers=2, chunk_size=256, backend="serial"
        ).run(REPORTER, stream)
        assert merged.solution() == reference.solution()


class TestAutoWorkers:
    """``workers='auto'`` sizing and the single-worker fallback."""

    def test_single_core_falls_back_in_process(
        self, adversarial_streams, scalar_estimates, monkeypatch
    ):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        runner = ShardedStreamRunner(workers="auto", backend="serial")
        assert runner.workers == 1
        merged, report = runner.run(
            ESTIMATOR, adversarial_streams["random"]
        )
        assert report.fallback == "single_pass"
        assert report.workers == 1
        assert report.dispatch == "in_process"
        assert report.dispatch_bytes == 0
        assert merged.estimate() == scalar_estimates["random"]

    def test_multi_core_auto_runs_sharded(
        self, adversarial_streams, scalar_estimates, monkeypatch
    ):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        runner = ShardedStreamRunner(workers="auto", backend="serial")
        assert runner.workers == 3
        merged, report = runner.run(
            ESTIMATOR, adversarial_streams["random"]
        )
        assert report.fallback == ""
        assert len(report.shards) == 3
        assert merged.estimate() == scalar_estimates["random"]

    def test_explicit_single_worker_falls_back(
        self, adversarial_streams, scalar_estimates
    ):
        merged, report = ShardedStreamRunner(
            workers=1, backend="serial"
        ).run(ESTIMATOR, adversarial_streams["random"])
        assert report.fallback == "single_pass"
        assert merged.estimate() == scalar_estimates["random"]

    def test_boundaries_bypass_the_fallback(
        self, adversarial_streams, scalar_estimates
    ):
        """Explicit boundaries ask for the shard pipeline; honour them."""
        stream = adversarial_streams["random"]
        merged, report = ShardedStreamRunner(
            workers=1, backend="serial"
        ).run(ESTIMATOR, stream, boundaries=[])
        assert report.fallback == ""
        assert len(report.shards) == 1
        assert merged.estimate() == scalar_estimates["random"]

    def test_bad_workers_string_rejected(self):
        with pytest.raises(ValueError, match="auto"):
            ShardedStreamRunner(workers="three")
