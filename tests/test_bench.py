"""Tests for the benchmark harness utilities."""

from __future__ import annotations

import pytest

from repro.bench.harness import Aggregate, fit_power_law, repeat, sweep
from repro.bench.spacemeter import model_curve, space_of
from repro.bench.tables import ResultTable
from repro.sketch.l0 import L0Sketch


class TestAggregate:
    def test_statistics(self):
        agg = Aggregate.of([1.0, 2.0, 3.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.minimum == 1.0
        assert agg.maximum == 3.0
        assert agg.count == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Aggregate.of([])

    def test_repeat_calls_per_seed(self):
        seen = []

        def fn(seed):
            seen.append(seed)
            return float(seed)

        agg = repeat(fn, [1, 2, 3])
        assert seen == [1, 2, 3]
        assert agg.mean == pytest.approx(2.0)

    def test_sweep_grid_times_seeds(self):
        calls = []

        def fn(point, seed):
            calls.append((point, seed))
            return point * seed

        results = sweep(fn, [10, 20], [1, 2])
        assert len(results) == 2
        assert results[0][0] == 10
        assert results[1][1].mean == pytest.approx(30.0)
        assert len(calls) == 4


class TestPowerLawFit:
    def test_recovers_exact_exponent(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [100 * x**-2 for x in xs]
        exponent, constant = fit_power_law(xs, ys)
        assert exponent == pytest.approx(-2.0)
        assert constant == pytest.approx(100.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0])


class TestSpaceMeter:
    def test_space_of_sums(self):
        a = L0Sketch(sketch_size=8, seed=1)
        b = L0Sketch(sketch_size=8, seed=2)
        assert space_of(a, b) == a.space_words() + b.space_words()

    def test_space_of_rejects_unmetered(self):
        with pytest.raises(TypeError):
            space_of(object())

    def test_model_curve(self):
        assert model_curve(1000, 10.0) == pytest.approx(10.0)
        assert model_curve(1000, 10.0, k=5) == pytest.approx(15.0)
        with pytest.raises(ValueError):
            model_curve(0, 2.0)


class TestResultTable:
    def test_render_alignment(self):
        table = ResultTable(["alpha", "space"], title="demo")
        table.add_row(2.0, 1234)
        table.add_row(16.0, 7)
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_markdown(self):
        table = ResultTable(["a", "b"])
        table.add_row(1, 2)
        md = table.render_markdown()
        assert md.startswith("| a | b |")
        assert "| 1 | 2 |" in md

    def test_row_width_enforced(self):
        table = ResultTable(["only"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_rejects_empty_columns(self):
        with pytest.raises(ValueError):
            ResultTable([])

    def test_float_formatting(self):
        table = ResultTable(["x"])
        table.add_row(0.000123)
        table.add_row(123456.0)
        table.add_row(1.5)
        text = table.render()
        assert "0.000123" in text
        assert "1.23e+05" in text or "123456" in text
        assert "1.50" in text
